package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func tinyCampaign(t *testing.T) CampaignConfig {
	t.Helper()
	return CampaignConfig{
		Simulator:          Glucosym,
		Profiles:           2,
		EpisodesPerProfile: 2,
		Steps:              60,
		Seed:               11,
	}
}

// TestSaveLoadRoundTrip checks the acceptance requirement that campaigns
// round-trip exactly: every sample, label, episode boundary, and fitted
// normalizer statistic must compare deeply equal after Save→Load —
// including the train split, whose normalizers are set.
func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Generate(tinyCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := ds.Split(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]*Dataset{"full": ds, "train": train} {
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(d, got) {
			t.Fatalf("%s: Save→Load round trip is not exact", name)
		}
		// Re-saving the loaded dataset must produce identical bytes — the
		// property warm-run byte-identical output rests on.
		var buf2 bytes.Buffer
		if err := got.Save(&buf2); err != nil {
			t.Fatalf("%s: re-save: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: re-saved bytes differ from original", name)
		}
	}
	if train.MLPNorm == nil || train.SeqNorm == nil {
		t.Fatal("train split lost its normalizers")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must not load")
	}
	if _, err := Load(strings.NewReader("{}")); err == nil {
		t.Fatal("an empty dataset must not load")
	}
}

// TestCampaignFingerprint checks that the fingerprint canonicalizes over
// filled defaults (an explicit default and an omitted field collide) and
// separates every generation-relevant field.
func TestCampaignFingerprint(t *testing.T) {
	base := tinyCampaign(t)
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	explicit := base
	explicit.Window = 6 // the filled default
	explicit.Horizon = 12
	explicit.BGTarget = 140
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Fatal("explicit defaults must fingerprint like omitted ones")
	}
	variants := []func(*CampaignConfig){
		func(c *CampaignConfig) { c.Simulator = T1DS },
		func(c *CampaignConfig) { c.Profiles++ },
		func(c *CampaignConfig) { c.EpisodesPerProfile++ },
		func(c *CampaignConfig) { c.Steps++ },
		func(c *CampaignConfig) { c.Window = 8 },
		func(c *CampaignConfig) { c.Horizon = 6 },
		func(c *CampaignConfig) { c.BGTarget = 120 },
		func(c *CampaignConfig) { c.Seed++ },
	}
	for i, mutate := range variants {
		v := base
		mutate(&v)
		if v.Fingerprint() == base.Fingerprint() {
			t.Fatalf("variant %d does not change the fingerprint", i)
		}
	}
	key := base.ArtifactKey()
	if key.Kind != "campaign" || key.Version != FormatVersion || key.Fingerprint != base.Fingerprint() {
		t.Fatalf("unexpected artifact key %v", key)
	}
}
