package dataset

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/artifact"
	"repro/internal/controller"
	"repro/internal/mmapio"
)

// Columnar campaign encoding (campaign FormatVersion 4).
//
// The JSON encoding (Save/Load) decodes one Go object per sample — at
// fleet scale the dominant warm-run cost. The columnar encoding stores the
// same dataset as fixed-order little-endian column blocks, so a warm load
// reinterprets the float columns in place ([]float64 views over the raw
// bytes, borrowed straight from mmap-ed artifact pages) instead of parsing
// and allocating per sample. Encoded bytes are a pure function of the
// dataset — independent of worker count, host, and store — which keeps the
// byte-determinism contract the JSON path established.
//
// Layout (all integers little-endian):
//
//	file header:  8-byte magic "APSCOLMN", uint32 FormatVersion,
//	              uint32 section count (always 10)
//	per section:  uint64 section id, uint64 payload length,
//	              uint64 checksum (CRC-32C of the payload, zero-extended),
//	              payload, zero padding to the next 8-byte boundary
//
// Sections appear in id order (meta, MLP floats, seq floats, scalar
// columns, int columns, episode index, scenarios, faults, MLP normalizer,
// seq normalizer); sections without content carry empty payloads, so the
// offset structure is identical for every dataset shape. Because the file
// header is 16 bytes, every section header is 24, and every payload is
// padded to a multiple of 8, each payload starts 8-byte aligned relative
// to the blob — and the artifact store's raw-file layout places the blob
// at an 8-aligned file offset, so mmap-ed float columns are pointer-aligned
// for in-place reinterpretation.
//
// Views returned by the decoder (Sample.MLP, Sample.Seq, normalizer
// statistics) are read-only by contract: mapped pages lack PROT_WRITE.
// The viewsafe lint analyzer enforces the contract on Sample's feature
// columns repo-wide.

const (
	colMagic        = "APSCOLMN"
	colSectionCount = 10
	colHeaderSize   = 16
	secHeaderSize   = 24
)

// Section ids, in file order.
const (
	secMeta = 1 + iota
	secMLP
	secSeq
	secScalars
	secInts
	secEpisodes
	secScenarios
	secFaults
	secMLPNorm
	secSeqNorm
)

// Meta flag bits: which optional parts are present (distinguishing nil
// from empty so a decode → Save round trip is byte-identical to the
// original JSON).
const (
	flagSamples = 1 << iota
	flagEpisodes
	flagScenarios
	flagFaults
	flagMLPNorm
	flagSeqNorm
)

// colCRC is the per-section checksum polynomial: CRC-32C has hardware
// support on amd64/arm64, so verifying a whole campaign costs a fraction
// of the decode it protects.
var colCRC = crc32.MakeTable(crc32.Castagnoli)

// colBuf builds one section payload.
type colBuf struct{ b []byte }

func (c *colBuf) u32(v uint32) {
	c.b = binary.LittleEndian.AppendUint32(c.b, v)
}
func (c *colBuf) u64(v uint64) {
	c.b = binary.LittleEndian.AppendUint64(c.b, v)
}
func (c *colBuf) i64(v int)     { c.u64(uint64(int64(v))) }
func (c *colBuf) f64(v float64) { c.u64(math.Float64bits(v)) }
func (c *colBuf) str(s string)  { c.u32(uint32(len(s))); c.b = append(c.b, s...) }
func (c *colBuf) byte(v byte)   { c.b = append(c.b, v) }
func (c *colBuf) floats(v []float64) {
	for _, f := range v {
		c.f64(f)
	}
}

// EncodeColumnar writes the dataset in the columnar binary format. The
// output is byte-identical for equal datasets regardless of how (or at
// what worker count) they were produced.
func (d *Dataset) EncodeColumnar(w io.Writer) error {
	n := len(d.Samples)
	mlpDim, seqWidth := 0, 0
	if n > 0 {
		mlpDim, seqWidth = len(d.Samples[0].MLP), len(d.Samples[0].Seq)
	}
	for i := range d.Samples {
		if len(d.Samples[i].MLP) != mlpDim || len(d.Samples[i].Seq) != seqWidth {
			return fmt.Errorf("dataset: encode columnar: sample %d has ragged feature widths (%d/%d, want %d/%d)",
				i, len(d.Samples[i].MLP), len(d.Samples[i].Seq), mlpDim, seqWidth)
		}
	}

	var meta colBuf
	meta.u64(uint64(n))
	meta.u64(uint64(mlpDim))
	meta.u64(uint64(seqWidth))
	meta.i64(d.Window)
	meta.i64(d.Horizon)
	meta.f64(d.BGTarget)
	var flags byte
	if d.Samples != nil {
		flags |= flagSamples
	}
	if d.EpisodeIndex != nil {
		flags |= flagEpisodes
	}
	if d.Scenarios != nil {
		flags |= flagScenarios
	}
	if d.Faults != nil {
		flags |= flagFaults
	}
	if d.MLPNorm != nil {
		flags |= flagMLPNorm
	}
	if d.SeqNorm != nil {
		flags |= flagSeqNorm
	}
	meta.byte(flags)
	meta.str(d.Simulator)

	var mlp, seq colBuf
	mlp.b = make([]byte, 0, 8*n*mlpDim)
	seq.b = make([]byte, 0, 8*n*seqWidth)
	for i := range d.Samples {
		mlp.floats(d.Samples[i].MLP)
		seq.floats(d.Samples[i].Seq)
	}

	var scalars colBuf
	scalars.b = make([]byte, 0, 4*8*n)
	for _, get := range []func(*Sample) float64{
		func(s *Sample) float64 { return s.Knowledge },
		func(s *Sample) float64 { return s.BG },
		func(s *Sample) float64 { return s.DeltaBG },
		func(s *Sample) float64 { return s.DeltaIOB },
	} {
		for i := range d.Samples {
			scalars.f64(get(&d.Samples[i]))
		}
	}

	var ints colBuf
	ints.b = make([]byte, 0, 4*8*n+n)
	for _, get := range []func(*Sample) int{
		func(s *Sample) int { return s.Label },
		func(s *Sample) int { return s.EpisodeID },
		func(s *Sample) int { return s.Step },
		func(s *Sample) int { return int(s.Action) },
	} {
		for i := range d.Samples {
			ints.i64(get(&d.Samples[i]))
		}
	}
	for i := range d.Samples {
		if d.Samples[i].HazardNow {
			ints.byte(1)
		} else {
			ints.byte(0)
		}
	}

	var episodes colBuf
	episodes.u64(uint64(len(d.EpisodeIndex)))
	for _, r := range d.EpisodeIndex {
		episodes.i64(r[0])
		episodes.i64(r[1])
	}

	strSection := func(ss []string) []byte {
		var c colBuf
		c.u64(uint64(len(ss)))
		for _, s := range ss {
			c.str(s)
		}
		return c.b
	}
	normSection := func(nz *Normalizer) []byte {
		if nz == nil {
			return nil
		}
		var c colBuf
		c.u64(uint64(len(nz.Mean)))
		c.floats(nz.Mean)
		c.u64(uint64(len(nz.Std)))
		c.floats(nz.Std)
		return c.b
	}

	sections := [colSectionCount][]byte{
		meta.b, mlp.b, seq.b, scalars.b, ints.b, episodes.b,
		strSection(d.Scenarios), strSection(d.Faults),
		normSection(d.MLPNorm), normSection(d.SeqNorm),
	}

	var hdr [colHeaderSize]byte
	copy(hdr[:], colMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(FormatVersion))
	binary.LittleEndian.PutUint32(hdr[12:], colSectionCount)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dataset: encode columnar: %w", err)
	}
	var pad [8]byte
	for i, payload := range sections {
		var sh [secHeaderSize]byte
		binary.LittleEndian.PutUint64(sh[0:], uint64(i+1))
		binary.LittleEndian.PutUint64(sh[8:], uint64(len(payload)))
		binary.LittleEndian.PutUint64(sh[16:], uint64(crc32.Checksum(payload, colCRC)))
		if _, err := w.Write(sh[:]); err != nil {
			return fmt.Errorf("dataset: encode columnar: %w", err)
		}
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("dataset: encode columnar: %w", err)
		}
		if rem := len(payload) % 8; rem != 0 {
			if _, err := w.Write(pad[:8-rem]); err != nil {
				return fmt.Errorf("dataset: encode columnar: %w", err)
			}
		}
	}
	return nil
}

// colReader walks one decoded blob.
type colReader struct {
	b   []byte
	off int
}

func (c *colReader) remaining() int { return len(c.b) - c.off }

func (c *colReader) take(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("dataset: columnar: truncated at offset %d (need %d of %d remaining bytes)",
			c.off, n, c.remaining())
	}
	b := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return b, nil
}

func (c *colReader) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *colReader) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *colReader) i64() (int, error) {
	v, err := c.u64()
	return int(int64(v)), err
}

func (c *colReader) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *colReader) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	b, err := c.take(int(n))
	return string(b), err
}

// section validates and returns the payload of the expected next section.
func (c *colReader) section(wantID int) ([]byte, error) {
	id, err := c.u64()
	if err != nil {
		return nil, err
	}
	if id != uint64(wantID) {
		return nil, fmt.Errorf("dataset: columnar: section %d out of order (want %d)", id, wantID)
	}
	size, err := c.u64()
	if err != nil {
		return nil, err
	}
	sum, err := c.u64()
	if err != nil {
		return nil, err
	}
	if size > uint64(c.remaining()) {
		return nil, fmt.Errorf("dataset: columnar: section %d truncated (%d bytes declared, %d remain)", wantID, size, c.remaining())
	}
	payload, err := c.take(int(size))
	if err != nil {
		return nil, err
	}
	if got := uint64(crc32.Checksum(payload, colCRC)); got != sum {
		return nil, fmt.Errorf("dataset: columnar: section %d checksum mismatch (%08x, want %08x)", wantID, got, sum)
	}
	if rem := int(size) % 8; rem != 0 {
		if _, err := c.take(8 - rem); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// floatColumn reinterprets (or decodes) a float64 column of count values
// from the section payload starting at byte offset off.
func floatColumn(payload []byte, off, count int) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	end := off + 8*count
	if off < 0 || end > len(payload) {
		return nil, fmt.Errorf("dataset: columnar: float column [%d:%d) outside %d-byte section", off, end, len(payload))
	}
	v, _ := mmapio.Float64s(payload[off:end:end])
	return v, nil
}

// DecodeColumnarBytes decodes a columnar blob. Float columns are
// reinterpreted in place when alignment and host endianness allow, so the
// returned dataset's Sample.MLP/Sample.Seq slices (and normalizer
// statistics) may be views into data — read-only by contract. The caller
// must keep data reachable for the dataset's lifetime (slices returned by
// mmapio keep heap-backed blobs alive automatically; mapped regions are
// process-lifetime).
func DecodeColumnarBytes(data []byte) (*Dataset, error) {
	c := &colReader{b: data}
	hdr, err := c.take(colHeaderSize)
	if err != nil {
		return nil, err
	}
	if string(hdr[:8]) != colMagic {
		return nil, fmt.Errorf("dataset: columnar: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return nil, fmt.Errorf("dataset: columnar: format version %d, want %d", v, FormatVersion)
	}
	if ns := binary.LittleEndian.Uint32(hdr[12:]); ns != colSectionCount {
		return nil, fmt.Errorf("dataset: columnar: %d sections, want %d", ns, colSectionCount)
	}

	metaPayload, err := c.section(secMeta)
	if err != nil {
		return nil, err
	}
	m := &colReader{b: metaPayload}
	nU, err := m.u64()
	if err != nil {
		return nil, err
	}
	mlpDimU, err := m.u64()
	if err != nil {
		return nil, err
	}
	seqWidthU, err := m.u64()
	if err != nil {
		return nil, err
	}
	n, mlpDim, seqWidth := int(nU), int(mlpDimU), int(seqWidthU)
	window, err := m.i64()
	if err != nil {
		return nil, err
	}
	horizon, err := m.i64()
	if err != nil {
		return nil, err
	}
	bgTarget, err := m.f64()
	if err != nil {
		return nil, err
	}
	flagsB, err := m.take(1)
	if err != nil {
		return nil, err
	}
	flags := flagsB[0]
	simulator, err := m.str()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Simulator: simulator,
		Window:    window,
		Horizon:   horizon,
		BGTarget:  bgTarget,
	}

	mlpPayload, err := c.section(secMLP)
	if err != nil {
		return nil, err
	}
	seqPayload, err := c.section(secSeq)
	if err != nil {
		return nil, err
	}
	scalarPayload, err := c.section(secScalars)
	if err != nil {
		return nil, err
	}
	intPayload, err := c.section(secInts)
	if err != nil {
		return nil, err
	}
	if len(mlpPayload) != 8*n*mlpDim || len(seqPayload) != 8*n*seqWidth ||
		len(scalarPayload) != 4*8*n || len(intPayload) != 4*8*n+n {
		return nil, fmt.Errorf("dataset: columnar: column sections sized %d/%d/%d/%d for %d samples (dims %d/%d)",
			len(mlpPayload), len(seqPayload), len(scalarPayload), len(intPayload), n, mlpDim, seqWidth)
	}

	if flags&flagSamples != 0 || n > 0 {
		mlpAll, err := floatColumn(mlpPayload, 0, n*mlpDim)
		if err != nil {
			return nil, err
		}
		seqAll, err := floatColumn(seqPayload, 0, n*seqWidth)
		if err != nil {
			return nil, err
		}
		var scalarCols [4][]float64
		for i := range scalarCols {
			if scalarCols[i], err = floatColumn(scalarPayload, i*8*n, n); err != nil {
				return nil, err
			}
		}
		hazards := intPayload[4*8*n:]
		intCol := func(col, i int) int {
			return int(int64(binary.LittleEndian.Uint64(intPayload[8*(col*n+i):])))
		}
		samples := make([]Sample, n)
		for i := range samples {
			s := &samples[i]
			if mlpDim > 0 {
				s.MLP = mlpAll[i*mlpDim : (i+1)*mlpDim : (i+1)*mlpDim]
			}
			if seqWidth > 0 {
				s.Seq = seqAll[i*seqWidth : (i+1)*seqWidth : (i+1)*seqWidth]
			}
			s.Knowledge = scalarCols[0][i]
			s.BG = scalarCols[1][i]
			s.DeltaBG = scalarCols[2][i]
			s.DeltaIOB = scalarCols[3][i]
			s.Label = intCol(0, i)
			s.EpisodeID = intCol(1, i)
			s.Step = intCol(2, i)
			s.Action = controller.Action(intCol(3, i))
			s.HazardNow = hazards[i] != 0
		}
		d.Samples = samples
	}

	epPayload, err := c.section(secEpisodes)
	if err != nil {
		return nil, err
	}
	e := &colReader{b: epPayload}
	nEpU, err := e.u64()
	if err != nil {
		return nil, err
	}
	nEp := int(nEpU)
	if e.remaining() != 16*nEp {
		return nil, fmt.Errorf("dataset: columnar: episode index holds %d bytes for %d episodes", e.remaining(), nEp)
	}
	if flags&flagEpisodes != 0 || nEp > 0 {
		d.EpisodeIndex = make([][2]int, nEp)
		for i := range d.EpisodeIndex {
			from, _ := e.i64()
			to, err := e.i64()
			if err != nil {
				return nil, err
			}
			d.EpisodeIndex[i] = [2]int{from, to}
		}
	}

	strSection := func(id int, present bool) ([]string, error) {
		payload, err := c.section(id)
		if err != nil {
			return nil, err
		}
		sr := &colReader{b: payload}
		countU, err := sr.u64()
		if err != nil {
			return nil, err
		}
		count := int(countU)
		if !present && count == 0 {
			return nil, nil
		}
		out := make([]string, count)
		for i := range out {
			if out[i], err = sr.str(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if d.Scenarios, err = strSection(secScenarios, flags&flagScenarios != 0); err != nil {
		return nil, err
	}
	if d.Faults, err = strSection(secFaults, flags&flagFaults != 0); err != nil {
		return nil, err
	}

	normSection := func(id int, present bool) (*Normalizer, error) {
		payload, err := c.section(id)
		if err != nil {
			return nil, err
		}
		if !present {
			if len(payload) != 0 {
				return nil, fmt.Errorf("dataset: columnar: absent normalizer carries %d bytes", len(payload))
			}
			return nil, nil
		}
		nr := &colReader{b: payload}
		readCol := func() ([]float64, error) {
			countU, err := nr.u64()
			if err != nil {
				return nil, err
			}
			col, err := floatColumn(nr.b, nr.off, int(countU))
			if err != nil {
				return nil, err
			}
			nr.off += 8 * int(countU)
			return col, nil
		}
		mean, err := readCol()
		if err != nil {
			return nil, err
		}
		std, err := readCol()
		if err != nil {
			return nil, err
		}
		return &Normalizer{Mean: mean, Std: std}, nil
	}
	if d.MLPNorm, err = normSection(secMLPNorm, flags&flagMLPNorm != 0); err != nil {
		return nil, err
	}
	if d.SeqNorm, err = normSection(secSeqNorm, flags&flagSeqNorm != 0); err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("dataset: columnar: %d trailing bytes after final section", c.remaining())
	}
	return d, nil
}

// DecodeColumnar reads a columnar blob from r. The bytes are buffered in
// memory and the float columns become views into that buffer — cheaper
// than JSON by orders of magnitude in allocations, but still one full
// copy; LoadColumnarFile avoids even that by borrowing mmap-ed pages.
func DecodeColumnar(r io.Reader) (*Dataset, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: columnar: %w", err)
	}
	return DecodeColumnarBytes(b)
}

// LoadColumnarFile decodes the columnar blob stored at byte offset off of
// the file at path, borrowing the file's pages via mmapio when possible.
// The returned dataset pins the mapped region for its lifetime; its
// feature columns are read-only views (see the package contract).
func LoadColumnarFile(path string, off int64) (*Dataset, error) {
	reg, err := mmapio.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: columnar: %w", err)
	}
	data := reg.Data()
	if off < 0 || off > int64(len(data)) {
		return nil, fmt.Errorf("dataset: columnar: payload offset %d outside %d-byte file", off, len(data))
	}
	d, err := DecodeColumnarBytes(data[off:])
	if err != nil {
		return nil, err
	}
	d.backing = reg
	return d, nil
}

// CachedColumnar is the get-or-create protocol for columnar-encoded
// datasets: it loads the entry under key from the store (zero-copy via
// the raw-file seam when the store offers one, streaming otherwise),
// falling back to create on any miss and persisting the fresh dataset
// columnar-encoded. requireSamples rejects cached empty datasets as
// corrupt (campaigns must be non-empty; shard ranges may legitimately be
// empty). A nil store always creates.
func CachedColumnar(store artifact.Store, key artifact.Key, create func() (*Dataset, error), requireSamples bool) (ds *Dataset, hit bool, err error) {
	if store == nil {
		ds, err = create()
		return ds, false, err
	}
	validate := func() error {
		if requireSamples && ds.Len() == 0 {
			return fmt.Errorf("dataset: columnar: no samples")
		}
		return nil
	}
	doCreate := func() error {
		var cerr error
		ds, cerr = create()
		return cerr
	}
	encode := func(w io.Writer) error { return ds.EncodeColumnar(w) }
	if fs, ok := store.(artifact.FileStore); ok {
		hit, err = fs.GetOrCreateFile(key,
			func(path string, payloadOff int64) error {
				var lerr error
				if ds, lerr = LoadColumnarFile(path, payloadOff); lerr != nil {
					return lerr
				}
				return validate()
			},
			doCreate, encode)
		return ds, hit, err
	}
	hit, err = store.GetOrCreate(key,
		func(r io.Reader) error {
			var lerr error
			if ds, lerr = DecodeColumnar(r); lerr != nil {
				return lerr
			}
			return validate()
		},
		doCreate, encode)
	return ds, hit, err
}
