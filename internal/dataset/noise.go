package dataset

import (
	"fmt"
	"math/rand"
)

// GaussianNoisySamples returns a deep copy of the dataset's samples with
// zero-mean Gaussian noise added to the *raw sensor stream* of each window
// — BG and IOB per step, at σ times each signal's standard deviation — and
// all derived features recomputed from the noisy series:
//
//   - per-step derivatives ∆BG/∆IOB are rebuilt from the noisy samples
//     (the first step keeps its original derivative plus its own noise
//     contribution, since the pre-window sample is unavailable);
//   - the MLP's aggregated features (means, regression slopes, last values)
//     are recomputed over the noisy window.
//
// Control-command signals (rate, action) are untouched, matching §III of
// the paper ("Gaussian noise is only applied to sensor data"). The Dataset
// must carry a fitted SeqNorm (its per-feature stds define the noise
// scale).
func GaussianNoisySamples(rng *rand.Rand, d *Dataset, sigma float64) ([]Sample, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("dataset: negative sigma %v", sigma)
	}
	if d.SeqNorm == nil {
		return nil, fmt.Errorf("dataset: GaussianNoisySamples needs a fitted SeqNorm")
	}
	bgStd := d.SeqNorm.Std[SeqFeatBG]
	iobStd := d.SeqNorm.Std[SeqFeatIOB]
	stepMin := d.StepMin()
	w := d.Window

	out := make([]Sample, len(d.Samples))
	for i, s := range d.Samples {
		ns := s
		ns.Seq = append([]float64(nil), s.Seq...)
		ns.MLP = append([]float64(nil), s.MLP...)

		bgNoise := make([]float64, w)
		iobNoise := make([]float64, w)
		for t := 0; t < w; t++ {
			bgNoise[t] = rng.NormFloat64() * sigma * bgStd
			iobNoise[t] = rng.NormFloat64() * sigma * iobStd
		}
		// Perturb the per-step sensor stream.
		for t := 0; t < w; t++ {
			base := t * SeqFeatureCount
			ns.Seq[base+SeqFeatBG] += bgNoise[t]
			ns.Seq[base+SeqFeatIOB] += iobNoise[t]
			// Derivatives follow the noisy series.
			if t > 0 {
				ns.Seq[base+SeqFeatDeltaBG] += (bgNoise[t] - bgNoise[t-1]) / stepMin
				ns.Seq[base+SeqFeatDeltaIOB] += (iobNoise[t] - iobNoise[t-1]) / stepMin
			} else {
				ns.Seq[base+SeqFeatDeltaBG] += bgNoise[t] / stepMin
				ns.Seq[base+SeqFeatDeltaIOB] += iobNoise[t] / stepMin
			}
		}
		// Recompute the aggregated MLP features from the noisy window.
		var sumBG, sumIOB float64
		bgSeries := make([]float64, w)
		iobSeries := make([]float64, w)
		for t := 0; t < w; t++ {
			base := t * SeqFeatureCount
			bgSeries[t] = ns.Seq[base+SeqFeatBG]
			iobSeries[t] = ns.Seq[base+SeqFeatIOB]
			sumBG += bgSeries[t]
			sumIOB += iobSeries[t]
		}
		ns.MLP[MLPFeatMeanBG] = sumBG / float64(w)
		ns.MLP[MLPFeatMeanIOB] = sumIOB / float64(w)
		ns.MLP[MLPFeatSlopeBG] = sliceSlope(bgSeries, stepMin)
		ns.MLP[MLPFeatSlopeIOB] = sliceSlope(iobSeries, stepMin)
		ns.MLP[MLPFeatLastBG] = bgSeries[w-1]
		ns.MLP[MLPFeatLastIOB] = iobSeries[w-1]
		// Rule-evaluation context follows the noisy aggregates.
		ns.BG = ns.MLP[MLPFeatMeanBG]
		ns.DeltaBG = ns.MLP[MLPFeatSlopeBG]
		ns.DeltaIOB = ns.MLP[MLPFeatSlopeIOB]
		out[i] = ns
	}
	return out, nil
}

// StepMin returns the sampling period of the windows (5 minutes throughout
// the paper's campaigns).
func (d *Dataset) StepMin() float64 { return 5 }

// sliceSlope is the least-squares slope of evenly spaced samples.
func sliceSlope(y []float64, dt float64) float64 {
	n := float64(len(y))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, v := range y {
		x := float64(i) * dt
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
