package dataset

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// provenanceCampaign generates a small campaign whose scenario mix spans
// fault-free, single-fault-type, and sensor scenarios, so provenance slices
// are distinguishable.
func provenanceCampaign(t *testing.T) *Dataset {
	t.Helper()
	mix, err := sim.ParseScenarioMix("nominal:1,overdose:1,suspend:1,sensor_drift:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(CampaignConfig{
		Simulator:          Glucosym,
		Profiles:           3,
		EpisodesPerProfile: 4,
		Steps:              60,
		Seed:               9,
		Scenarios:          mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// originalEpisode recovers the episode's index in the source dataset from
// its samples' provenance (Split/Filter copy samples verbatim, EpisodeID
// included).
func originalEpisode(t *testing.T, d *Dataset, ep int) int {
	t.Helper()
	r := d.EpisodeIndex[ep]
	if r[1] <= r[0] {
		t.Fatalf("episode %d is empty", ep)
	}
	return d.Samples[r[0]].EpisodeID
}

func TestGenerateRecordsFaultProvenance(t *testing.T) {
	ds := provenanceCampaign(t)
	if len(ds.Faults) != len(ds.EpisodeIndex) || len(ds.Scenarios) != len(ds.EpisodeIndex) {
		t.Fatalf("provenance misaligned: %d faults, %d scenarios, %d episodes",
			len(ds.Faults), len(ds.Scenarios), len(ds.EpisodeIndex))
	}
	for ep, scen := range ds.Scenarios {
		switch scen {
		case sim.ScenarioNominal, sim.ScenarioSensorDrift:
			if ds.Faults[ep] != "none" {
				t.Errorf("episode %d (%s): fault %q, want none", ep, scen, ds.Faults[ep])
			}
		case sim.ScenarioOverdose, sim.ScenarioSuspend:
			if ds.Faults[ep] != scen {
				t.Errorf("episode %d (%s): fault %q, want %s", ep, scen, ds.Faults[ep], scen)
			}
		default:
			t.Errorf("unexpected scenario %q in mix", scen)
		}
	}
}

func TestSplitKeepsProvenanceAligned(t *testing.T) {
	ds := provenanceCampaign(t)
	train, test, err := ds.Split(0.75)
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []*Dataset{train, test} {
		if len(side.Scenarios) != len(side.EpisodeIndex) || len(side.Faults) != len(side.EpisodeIndex) {
			t.Fatalf("split side misaligned: %d scenarios, %d faults, %d episodes",
				len(side.Scenarios), len(side.Faults), len(side.EpisodeIndex))
		}
		for ep := range side.EpisodeIndex {
			orig := originalEpisode(t, side, ep)
			if side.Scenarios[ep] != ds.Scenarios[orig] {
				t.Errorf("episode %d: scenario %q, original %d had %q",
					ep, side.Scenarios[ep], orig, ds.Scenarios[orig])
			}
			if side.Faults[ep] != ds.Faults[orig] {
				t.Errorf("episode %d: fault %q, original %d had %q",
					ep, side.Faults[ep], orig, ds.Faults[orig])
			}
		}
	}
}

func TestSplitLegacyProvenanceFreeStaysNil(t *testing.T) {
	ds := provenanceCampaign(t)
	legacy := *ds
	legacy.Scenarios = nil // a dataset persisted before provenance existed
	legacy.Faults = nil
	train, test, err := legacy.Split(0.75)
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []*Dataset{train, test} {
		if side.Scenarios != nil || side.Faults != nil {
			t.Fatalf("legacy split invented provenance: %v / %v", side.Scenarios, side.Faults)
		}
	}
	// The sample partition itself must match the provenance-carrying split.
	wTrain, wTest, err := ds.Split(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(train.EpisodeIndex, wTrain.EpisodeIndex) || !reflect.DeepEqual(test.EpisodeIndex, wTest.EpisodeIndex) {
		t.Fatal("legacy split partitions episodes differently")
	}
}

func TestFilterKeepsProvenanceAndNormalizers(t *testing.T) {
	ds := provenanceCampaign(t)
	train, test, err := ds.Split(0.75)
	if err != nil {
		t.Fatal(err)
	}
	sub := test.Filter(func(ep int) bool { return test.Scenarios[ep] == sim.ScenarioNominal })
	if len(sub.EpisodeIndex) == 0 {
		t.Skip("no nominal episode landed in the test split at this seed")
	}
	if len(sub.Scenarios) != len(sub.EpisodeIndex) || len(sub.Faults) != len(sub.EpisodeIndex) {
		t.Fatalf("filter misaligned: %d scenarios, %d faults, %d episodes",
			len(sub.Scenarios), len(sub.Faults), len(sub.EpisodeIndex))
	}
	for ep := range sub.EpisodeIndex {
		if sub.Scenarios[ep] != sim.ScenarioNominal {
			t.Errorf("episode %d: scenario %q leaked through the filter", ep, sub.Scenarios[ep])
		}
		if sub.Faults[ep] != "none" {
			t.Errorf("nominal episode %d carries fault %q", ep, sub.Faults[ep])
		}
		r := sub.EpisodeIndex[ep]
		if ep > 0 && r[0] != sub.EpisodeIndex[ep-1][1] {
			t.Errorf("episode %d not re-indexed contiguously: %v", ep, sub.EpisodeIndex)
		}
	}
	if sub.MLPNorm != test.MLPNorm || sub.SeqNorm != test.SeqNorm {
		t.Error("filter did not share the source normalizers")
	}
	if sub.Len() == test.Len() {
		t.Error("filter removed nothing despite a mixed test split")
	}

	// An empty selection is a valid (empty) dataset, not a panic.
	none := test.Filter(func(int) bool { return false })
	if none.Len() != 0 || len(none.EpisodeIndex) != 0 {
		t.Fatalf("empty filter kept %d samples", none.Len())
	}
	// Train-side shuffle must not disturb alignment either (train episodes
	// are shuffled by the split): filter by fault and cross-check.
	faulty := train.Filter(func(ep int) bool { return train.Faults[ep] != "none" })
	for ep := range faulty.EpisodeIndex {
		orig := originalEpisode(t, faulty, ep)
		if faulty.Faults[ep] != ds.Faults[orig] {
			t.Errorf("train-filter episode %d: fault %q, original had %q",
				ep, faulty.Faults[ep], ds.Faults[orig])
		}
	}
}
