package dataset

import (
	"fmt"

	"repro/internal/sim"
)

// Simulator selects which closed-loop case study a campaign runs.
type Simulator int

const (
	// Glucosym pairs the Bergman-style patient with the OpenAPS controller.
	Glucosym Simulator = iota + 1
	// T1DS pairs the Hovorka-style patient with the Basal-Bolus controller.
	T1DS
)

// String implements fmt.Stringer.
func (s Simulator) String() string {
	switch s {
	case Glucosym:
		return "glucosym"
	case T1DS:
		return "t1ds"
	default:
		return fmt.Sprintf("Simulator(%d)", int(s))
	}
}

// CampaignConfig sizes a simulation campaign. The paper runs 8,800
// simulations per simulator; the defaults here are laptop-scale and every
// knob scales up.
type CampaignConfig struct {
	Simulator Simulator
	// Profiles is the number of patient profiles to simulate (≤ 20).
	Profiles int
	// EpisodesPerProfile is the number of episodes per profile; half of them
	// (rounded up) receive an injected fault.
	EpisodesPerProfile int
	// Steps is the episode length in 5-minute control steps.
	Steps int
	// Window is the monitor input window W (default 6 = 30 min).
	Window int
	// Horizon is the hazard prediction horizon T in steps (default 12 =
	// 60 min; insulin and glucose dynamics act over tens of minutes, so a
	// 30-minute horizon misses most slow-onset hyperglycemia).
	Horizon int
	// BGTarget is the BGT constant of the Table I rules (default 140).
	BGTarget float64
	// Seed makes the campaign reproducible.
	Seed int64
}

func (c *CampaignConfig) fill() {
	if c.Profiles == 0 {
		c.Profiles = 20
	}
	if c.EpisodesPerProfile == 0 {
		c.EpisodesPerProfile = 4
	}
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.Window == 0 {
		c.Window = 6
	}
	if c.Horizon == 0 {
		c.Horizon = 12
	}
	if c.BGTarget == 0 {
		c.BGTarget = 140
	}
}

// Generate runs the campaign and assembles the labeled dataset.
func Generate(cfg CampaignConfig) (*Dataset, error) {
	cfg.fill()
	if cfg.Simulator != Glucosym && cfg.Simulator != T1DS {
		return nil, fmt.Errorf("dataset: unknown simulator %d", int(cfg.Simulator))
	}
	traces, err := RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return FromTraces(traces, cfg.Window, cfg.Horizon, cfg.BGTarget)
}

// RunCampaign executes the episodes of a campaign and returns their traces
// (exposed separately for the example programs and trace-level experiments).
func RunCampaign(cfg CampaignConfig) ([]*sim.Trace, error) {
	cfg.fill()
	var traces []*sim.Trace
	for prof := 0; prof < cfg.Profiles; prof++ {
		for ep := 0; ep < cfg.EpisodesPerProfile; ep++ {
			ec := sim.EpisodeConfig{
				ProfileID: prof,
				Seed:      cfg.Seed + int64(prof)*1_000_003 + int64(ep)*7_907,
				Faulty:    ep%2 == 0, // half the episodes carry a fault
			}
			var (
				scfg sim.Config
				err  error
			)
			switch cfg.Simulator {
			case Glucosym:
				scfg, err = sim.BuildGlucosymEpisode(ec, cfg.Steps)
			case T1DS:
				scfg, err = sim.BuildT1DSEpisode(ec, cfg.Steps)
			}
			if err != nil {
				return nil, fmt.Errorf("dataset: build episode (profile %d, ep %d): %w", prof, ep, err)
			}
			tr, err := sim.Run(scfg)
			if err != nil {
				return nil, fmt.Errorf("dataset: run episode (profile %d, ep %d): %w", prof, ep, err)
			}
			traces = append(traces, tr)
		}
	}
	return traces, nil
}
