package dataset

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Simulator selects which closed-loop case study a campaign runs.
type Simulator int

const (
	// Glucosym pairs the Bergman-style patient with the OpenAPS controller.
	Glucosym Simulator = iota + 1
	// T1DS pairs the Hovorka-style patient with the Basal-Bolus controller.
	T1DS
)

// String implements fmt.Stringer.
func (s Simulator) String() string {
	switch s {
	case Glucosym:
		return "glucosym"
	case T1DS:
		return "t1ds"
	default:
		return fmt.Sprintf("Simulator(%d)", int(s))
	}
}

// CampaignConfig sizes a simulation campaign. The paper runs 8,800
// simulations per simulator; the defaults here are laptop-scale and every
// knob scales up.
type CampaignConfig struct {
	Simulator Simulator
	// Profiles is the number of patient profiles to simulate (≤ 20).
	Profiles int
	// EpisodesPerProfile is the number of episodes per profile; the
	// Scenarios mix apportions them across scenario generators.
	EpisodesPerProfile int
	// Steps is the episode length in 5-minute control steps.
	Steps int
	// Window is the monitor input window W (default 6 = 30 min).
	Window int
	// Horizon is the hazard prediction horizon T in steps (default 12 =
	// 60 min; insulin and glucose dynamics act over tens of minutes, so a
	// 30-minute horizon misses most slow-onset hyperglycemia).
	Horizon int
	// BGTarget is the BGT constant of the Table I rules (default 140).
	BGTarget float64
	// Seed makes the campaign reproducible.
	Seed int64
	// Scenarios is the per-campaign scenario mix; each profile's episodes
	// are apportioned across the named generators in proportion to the
	// weights (deterministically, no sampling). Empty selects
	// sim.DefaultScenarioMix — equal parts nominal and random_fault, the
	// paper's half-faulty campaign shape.
	Scenarios sim.ScenarioMix
	// Workers caps how many goroutines episodes fan out to (0 = all cores,
	// 1 = serial; additionally clamped by the shared sweep budget). Output
	// is byte-identical at every setting, so Workers never enters the
	// campaign fingerprint.
	Workers int // fp:ignore scheduling knob, output is byte-identical at every worker count
}

func (c *CampaignConfig) fill() {
	if c.Profiles == 0 {
		c.Profiles = 20
	}
	if c.EpisodesPerProfile == 0 {
		c.EpisodesPerProfile = 4
	}
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.Window == 0 {
		c.Window = 6
	}
	if c.Horizon == 0 {
		c.Horizon = 12
	}
	if c.BGTarget == 0 {
		c.BGTarget = 140
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = sim.DefaultScenarioMix()
	}
}

// validate checks the filled config against the scenario registry and the
// windowing bounds (fill only defaults zero values, so negatives reach
// here).
func (c *CampaignConfig) validate() error {
	if c.Simulator != Glucosym && c.Simulator != T1DS {
		return fmt.Errorf("dataset: unknown simulator %d", int(c.Simulator))
	}
	if c.Window < 2 {
		return fmt.Errorf("dataset: window %d, want ≥ 2", c.Window)
	}
	if c.Horizon < 1 {
		return fmt.Errorf("dataset: horizon %d, want ≥ 1", c.Horizon)
	}
	if c.Profiles < 1 || c.EpisodesPerProfile < 1 || c.Steps < 1 {
		return fmt.Errorf("dataset: campaign needs ≥ 1 profile, episode and step (got %d/%d/%d)",
			c.Profiles, c.EpisodesPerProfile, c.Steps)
	}
	if err := c.Scenarios.Validate(nil); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// EpisodeSeed derives the RNG seed of episode index (row-major over
// profiles × episodes) with the sweep package's splitmix64 mixer: a pure
// function of (campaign seed, episode index), injective in the index, so no
// two episodes of a campaign ever share a seed at any campaign size. (The
// previous affine formula Seed + prof·1000003 + ep·7907 collides across
// (prof, ep) pairs once episode counts reach the coefficient scale — see
// TestEpisodeSeedCollisionFree.)
func (c CampaignConfig) EpisodeSeed(index int) int64 {
	return sweep.CellSeed(c.Seed, index)
}

// buildEpisode constructs the sim.Config of one campaign episode.
func (c CampaignConfig) buildEpisode(scenario string, index int) (sim.Config, error) {
	ec := sim.EpisodeConfig{
		ProfileID: index / c.EpisodesPerProfile,
		Seed:      c.EpisodeSeed(index),
		Scenario:  scenario,
	}
	switch c.Simulator {
	case Glucosym:
		return sim.BuildGlucosymEpisode(ec, c.Steps)
	case T1DS:
		return sim.BuildT1DSEpisode(ec, c.Steps)
	default:
		return sim.Config{}, fmt.Errorf("unknown simulator %d", int(c.Simulator))
	}
}

// runEpisodes fans the campaign's episodes out across the worker pool and
// hands each completed trace to consume on the worker goroutine (so the
// per-episode products stream out of the pipeline instead of buffering all
// traces first). consume must be safe for concurrent calls on distinct
// indices; results keyed by index keep deterministic order.
func runEpisodes[T any](cfg CampaignConfig, consume func(index int, tr *sim.Trace) (T, error)) ([]T, error) {
	return runEpisodeRange(cfg, 0, cfg.Profiles*cfg.EpisodesPerProfile, consume)
}

// runEpisodeRange runs only the global episode indices [from, to) of the
// campaign. Seeds, scenario assignment, and profile mapping are pure
// functions of the global index, so any range produces exactly the same
// episodes the full campaign would at those positions — the property shard
// generation is built on.
func runEpisodeRange[T any](cfg CampaignConfig, from, to int, consume func(index int, tr *sim.Trace) (T, error)) ([]T, error) {
	assign := cfg.Scenarios.Assign(cfg.EpisodesPerProfile)
	return sweep.Map(cfg.Workers, to-from, func(k int) (T, error) {
		var zero T
		i := from + k
		prof, ep := i/cfg.EpisodesPerProfile, i%cfg.EpisodesPerProfile
		scen := cfg.Scenarios[assign[ep]].Name
		scfg, err := cfg.buildEpisode(scen, i)
		if err != nil {
			return zero, fmt.Errorf("dataset: build episode (profile %d, ep %d, scenario %s): %w", prof, ep, scen, err)
		}
		tr, err := sim.Run(scfg)
		if err != nil {
			return zero, fmt.Errorf("dataset: run episode (profile %d, ep %d, scenario %s): %w", prof, ep, scen, err)
		}
		return consume(i, tr)
	})
}

// Generate runs the campaign and assembles the labeled dataset. Episodes
// fan out across CampaignConfig.Workers goroutines (bounded by the shared
// sweep budget) and each trace is windowed into samples as it completes, on
// the worker that produced it — the trace records are dropped immediately,
// so peak memory holds samples plus in-flight traces, never the whole
// campaign's raw records. Sample values and order are identical to
// FromTraces(RunCampaign(cfg)) at every worker count.
func Generate(cfg CampaignConfig) (*Dataset, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return generateRange(cfg, 0, cfg.Profiles*cfg.EpisodesPerProfile)
}

// generateRange generates and windows the global episode range [from, to)
// of an already filled + validated campaign — the shared engine of Generate
// (full range) and GenerateShard (one shard's slice).
func generateRange(cfg CampaignConfig, from, to int) (*Dataset, error) {
	w := newTraceWindower(cfg.Window, cfg.Horizon, cfg.BGTarget)
	type episode struct {
		samples  []Sample
		scenario string
		fault    string
	}
	episodes, err := runEpisodeRange(cfg, from, to, func(i int, tr *sim.Trace) (episode, error) {
		samples, err := w.windowTrace(tr, i)
		if err != nil {
			return episode{}, err
		}
		return episode{samples: samples, scenario: tr.Scenario, fault: FaultName(tr.Fault)}, nil
	})
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Simulator: cfg.Simulator.String(),
		Window:    cfg.Window,
		Horizon:   cfg.Horizon,
		BGTarget:  cfg.BGTarget,
	}
	for _, ep := range episodes {
		from := len(ds.Samples)
		ds.Samples = append(ds.Samples, ep.samples...)
		ds.EpisodeIndex = append(ds.EpisodeIndex, [2]int{from, len(ds.Samples)})
		ds.Scenarios = append(ds.Scenarios, ep.scenario)
		ds.Faults = append(ds.Faults, ep.fault)
	}
	return ds, nil
}

// RunCampaign executes the episodes of a campaign in parallel and returns
// their traces in deterministic (profile, episode) order — byte-identical
// to a serial run at every Workers setting (exposed separately for the
// example programs and trace-level experiments; Generate streams the traces
// into samples without materializing all of them).
func RunCampaign(cfg CampaignConfig) ([]*sim.Trace, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return runEpisodes(cfg, func(_ int, tr *sim.Trace) (*sim.Trace, error) { return tr, nil })
}
