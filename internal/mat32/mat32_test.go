package mat32

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/sweep"
)

// naiveMatMul is the reference ijk product the unrolled kernels must match
// bit for bit (ascending-k sequential adds — the same order the kernels
// keep).
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float32
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = float32(rng.NormFloat64())
	}
	return m
}

func matricesEqual(a, b *Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// TestMatMulMatchesNaive pins the unrolled kernel to the scalar reference at
// shapes that exercise the 8-wide body, the remainder loop, and both.
func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 8, 5}, {7, 16, 9}, {5, 13, 11}, {32, 24, 2}, {17, 33, 65}} {
		a := randMatrix(rng, shape[0], shape[1])
		b := randMatrix(rng, shape[1], shape[2])
		want := naiveMatMul(a, b)
		got := New(shape[0], shape[2])
		if err := MatMulInto(got, a, b); err != nil {
			t.Fatalf("MatMulInto %v: %v", shape, err)
		}
		if !matricesEqual(got, want) {
			t.Fatalf("MatMulInto %v diverges from naive product", shape)
		}
	}
}

// TestMatMulTMatchesTranspose checks a × bᵀ against MatMul with an explicit
// transpose at shapes covering the unrolled body and remainder.
func TestMatMulTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][3]int{{1, 3, 1}, {4, 8, 9}, {6, 17, 13}, {20, 5, 8}} {
		a := randMatrix(rng, shape[0], shape[1])
		b := randMatrix(rng, shape[2], shape[1]) // b is (bn × ac); product is a × bᵀ
		bt := New(shape[1], shape[2])
		for i := 0; i < b.Rows(); i++ {
			for j := 0; j < b.Cols(); j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		got := New(shape[0], shape[2])
		if err := MatMulTInto(got, a, b); err != nil {
			t.Fatalf("MatMulTInto %v: %v", shape, err)
		}
		want := naiveMatMul(a, bt)
		for i := 0; i < got.Rows(); i++ {
			for j := 0; j < got.Cols(); j++ {
				g, w := got.At(i, j), want.At(i, j)
				d := g - w
				if d < -1e-4 || d > 1e-4 {
					t.Fatalf("MatMulT %v at (%d,%d): got %v want %v", shape, i, j, g, w)
				}
			}
		}
	}
}

// TestMatMulParallelByteIdentical pins the determinism contract: a product
// big enough to fan out produces the same bits at every parallelism setting.
func TestMatMulParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 128, 96)
	b := randMatrix(rng, 96, 80)

	mat.SetParallelism(1)
	serial := New(128, 80)
	if err := MatMulInto(serial, a, b); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		mat.SetParallelism(workers)
		sweep.SetBudget(workers)
		got := New(128, 80)
		if err := MatMulInto(got, a, b); err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, serial) {
			t.Fatalf("parallel(%d) product differs from serial", workers)
		}
	}
	mat.SetParallelism(0)
	sweep.SetBudget(0)
}

func TestAddBiasAndApply(t *testing.T) {
	m, err := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	bias, err := FromSlice(1, 3, []float32{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := AddBias(m, bias); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range m.Data() {
		if v != want[i] {
			t.Fatalf("AddBias[%d] = %v, want %v", i, v, want[i])
		}
	}

	dst := New(2, 3)
	if err := ApplyInto(dst, m, func(v float32) float32 { return -v }); err != nil {
		t.Fatal(err)
	}
	if dst.At(1, 2) != -36 {
		t.Fatalf("ApplyInto = %v, want -36", dst.At(1, 2))
	}

	neg, err := FromSlice(1, 4, []float32{-1, 2, -3, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1, 4)
	if err := ReLUInto(r, neg); err != nil {
		t.Fatal(err)
	}
	wantR := []float32{0, 2, 0, 4}
	for i, v := range r.Data() {
		if v != wantR[i] {
			t.Fatalf("ReLUInto[%d] = %v, want %v", i, v, wantR[i])
		}
	}
}

func TestSliceSetColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 5, 12)
	part := New(5, 4)
	if err := SliceColsInto(part, m, 4, 8); err != nil {
		t.Fatal(err)
	}
	back := New(5, 12)
	if err := back.SetCols(4, part); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 4; j < 8; j++ {
			if back.At(i, j) != m.At(i, j) {
				t.Fatalf("round trip (%d,%d): %v != %v", i, j, back.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	src := mat.New(2, 2)
	src.Set(0, 0, 1.5)
	src.Set(1, 1, -2.25)
	q := FromF64(src)
	if q.At(0, 0) != 1.5 || q.At(1, 1) != -2.25 {
		t.Fatalf("FromF64 = %v", q.Data())
	}
	buf := New(2, 2)
	if err := buf.QuantizeInto(src); err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(buf, q) {
		t.Fatal("QuantizeInto differs from FromF64")
	}
	if q.ArgmaxRow(0) != 0 || q.ArgmaxRow(1) != 0 { // row 1 is [0, -2.25]
		t.Fatalf("ArgmaxRow = %d,%d", q.ArgmaxRow(0), q.ArgmaxRow(1))
	}
}

func TestShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5)
	if err := MatMulInto(New(2, 5), a, b); err == nil {
		t.Fatal("MatMulInto accepted mismatched inner dims")
	}
	if err := MatMulTInto(New(2, 4), a, b); err == nil {
		t.Fatal("MatMulTInto accepted mismatched cols")
	}
	if err := AddBias(a, New(2, 3)); err == nil {
		t.Fatal("AddBias accepted non-row bias")
	}
	if _, err := FromSlice(2, 2, []float32{1}); err == nil {
		t.Fatal("FromSlice accepted short data")
	}
}
