// Package mat32 is the float32 sibling of internal/mat: the dense-matrix
// kernel behind the frozen-inference path. Training stays in mat (float64,
// bit-deterministic gradients); inference on frozen models runs here, where
// half-width elements double the effective memory bandwidth and the 8-wide
// unrolled kernels give the compiler straight-line loops it can
// auto-vectorize.
//
// The package keeps the contracts of mat that inference relies on: matrices
// are row-major, products above a flop cutoff split into row blocks across
// goroutines drawn from the shared sweep worker budget, and every output row
// is computed with the same arithmetic order regardless of the split — so
// results are byte-identical at any worker count.
package mat32

import (
	"errors"
	"fmt"

	"repro/internal/mat"
)

// ErrShape is returned (wrapped) by operations whose operand shapes do not
// conform.
var ErrShape = errors.New("mat32: shape mismatch")

// Matrix is a dense, row-major matrix of float32.
type Matrix struct {
	rows, cols int
	data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// FromSlice builds a rows×cols matrix backed by a copy of data (row-major).
func FromSlice(rows, cols int, data []float32) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d values for %dx%d", ErrShape, len(data), rows, cols)
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m, nil
}

// FromF64 quantizes a float64 matrix to float32 — the one-time weight (and
// per-batch input) conversion of the frozen-inference path.
func FromF64(src *mat.Matrix) *Matrix {
	m := New(src.Rows(), src.Cols())
	for i, v := range src.Data() {
		m.data[i] = float32(v)
	}
	return m
}

// QuantizeInto writes float32(src) into m, which must have src's shape — the
// allocation-free form of FromF64 for reusable input buffers.
func (m *Matrix) QuantizeInto(src *mat.Matrix) error {
	if m.rows != src.Rows() || m.cols != src.Cols() {
		return fmt.Errorf("%w: QuantizeInto %dx%d from %dx%d", ErrShape, m.rows, m.cols, src.Rows(), src.Cols())
	}
	for i, v := range src.Data() {
		m.data[i] = float32(v)
	}
	return nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.data[i*m.cols+j] = v }

// Data exposes the backing slice (row-major). Mutations are visible to the
// matrix.
func (m *Matrix) Data() []float32 { return m.data }

// Row returns row i as a view into the backing slice.
func (m *Matrix) Row(i int) []float32 { return m.data[i*m.cols : (i+1)*m.cols] }

// RowsView returns rows [from, to) as a view sharing m's backing slice —
// no copy, mutations are visible both ways. The serving batcher uses it to
// run a fused classify over just the occupied prefix of its staging buffer.
func (m *Matrix) RowsView(from, to int) (*Matrix, error) {
	if from < 0 || to > m.rows || from > to {
		return nil, fmt.Errorf("%w: RowsView [%d,%d) of %d rows", ErrShape, from, to, m.rows)
	}
	return &Matrix{rows: to - from, cols: m.cols, data: m.data[from*m.cols : to*m.cols]}, nil
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: CopyFrom %dx%d into %dx%d", ErrShape, src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// AddInPlace adds b into m.
func (m *Matrix) AddInPlace(b *Matrix) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("%w: AddInPlace %dx%d += %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	for i, v := range b.data {
		m.data[i] += v
	}
	return nil
}

// MatMulInto computes dst = a × b. Every element of dst is overwritten; dst
// must not alias a or b. Products above the flop cutoff split into row
// blocks across goroutines drawn from the shared sweep budget; each output
// row keeps its serial accumulation order, so the result is byte-identical
// at any worker count.
func MatMulInto(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: MatMulInto %dx%d × %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: MatMulInto dst %dx%d, want %dx%d", ErrShape, dst.rows, dst.cols, a.rows, b.cols)
	}
	matMulDispatch(dst, a, b)
	return nil
}

// MatMul returns a × b (the allocating convenience form of MatMulInto).
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: MatMul %dx%d × %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	matMulDispatch(out, a, b)
	return out, nil
}

// MatMulTInto computes dst = a × bᵀ. Every element of dst is overwritten;
// dst must not alias a or b. Same parallel split and determinism contract as
// MatMulInto.
func MatMulTInto(dst, a, b *Matrix) error {
	if a.cols != b.cols {
		return fmt.Errorf("%w: MatMulTInto %dx%d × (%dx%d)ᵀ", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		return fmt.Errorf("%w: MatMulTInto dst %dx%d, want %dx%d", ErrShape, dst.rows, dst.cols, a.rows, b.rows)
	}
	matMulTDispatch(dst, a, b)
	return nil
}

// AddBias adds the 1×cols bias row vector to every row of m in place — the
// fused epilogue of the dense-layer product.
func AddBias(m, bias *Matrix) error {
	if bias.rows != 1 || bias.cols != m.cols {
		return fmt.Errorf("%w: AddBias %dx%d += %dx%d", ErrShape, m.rows, m.cols, bias.rows, bias.cols)
	}
	bd := bias.data
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, b := range bd {
			row[j] += b
		}
	}
	return nil
}

// ApplyInto computes dst = f(src) elementwise into a caller-owned
// destination.
func ApplyInto(dst, src *Matrix, f func(float32) float32) error {
	if dst.rows != src.rows || dst.cols != src.cols {
		return fmt.Errorf("%w: ApplyInto %dx%d from %dx%d", ErrShape, dst.rows, dst.cols, src.rows, src.cols)
	}
	for i, v := range src.data {
		dst.data[i] = f(v)
	}
	return nil
}

// ReLUInto computes dst = max(src, 0) elementwise — the branch-light special
// case of ApplyInto on the frozen MLP hot path (no per-element function
// call).
func ReLUInto(dst, src *Matrix) error {
	if dst.rows != src.rows || dst.cols != src.cols {
		return fmt.Errorf("%w: ReLUInto %dx%d from %dx%d", ErrShape, dst.rows, dst.cols, src.rows, src.cols)
	}
	dd := dst.data
	for i, v := range src.data {
		if v > 0 {
			dd[i] = v
		} else {
			dd[i] = 0
		}
	}
	return nil
}

// SliceColsInto copies columns [from, to) of m into a caller-owned
// destination — the per-step input gather of the frozen LSTM.
func SliceColsInto(dst, m *Matrix, from, to int) error {
	if from < 0 || to > m.cols || from > to {
		return fmt.Errorf("%w: SliceColsInto [%d,%d) of %d cols", ErrShape, from, to, m.cols)
	}
	if dst.rows != m.rows || dst.cols != to-from {
		return fmt.Errorf("%w: SliceColsInto dst %dx%d, want %dx%d", ErrShape, dst.rows, dst.cols, m.rows, to-from)
	}
	for i := 0; i < m.rows; i++ {
		copy(dst.Row(i), m.Row(i)[from:to])
	}
	return nil
}

// SetCols copies src into columns [from, from+src.Cols()) of m — the
// sequence-output scatter of the frozen LSTM.
func (m *Matrix) SetCols(from int, src *Matrix) error {
	if src.rows != m.rows || from < 0 || from+src.cols > m.cols {
		return fmt.Errorf("%w: SetCols at %d with %dx%d into %dx%d", ErrShape, from, src.rows, src.cols, m.rows, m.cols)
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i)[from:from+src.cols], src.Row(i))
	}
	return nil
}

// ArgmaxRow returns the index of the maximum element of row i (first index
// wins ties, matching mat.Matrix.ArgmaxRow).
func (m *Matrix) ArgmaxRow(i int) int {
	row := m.Row(i)
	if len(row) == 0 {
		return 0
	}
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}
