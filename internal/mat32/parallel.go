package mat32

import (
	"sync"

	"repro/internal/mat"
	"repro/internal/sweep"
)

// parallelFlopCutoff is the minimum multiply-accumulate count at which a
// goroutine fan-out pays for itself, matching internal/mat. The fan-out is
// additionally clamped so every spawned worker owns at least one cutoff's
// worth of flops — a product barely over the line runs serially rather than
// waking workers for sub-microsecond row blocks.
const parallelFlopCutoff = 1 << 16

// planWorkers returns how many workers a rows×(flops) product should try to
// fan out over; 1 means run serial. The count comes from the one
// process-wide knob (mat.SetParallelism — the f64 and f32 kernels share it),
// clamped by flops and rows.
func planWorkers(rows, flops int) int {
	if flops < parallelFlopCutoff {
		return 1
	}
	workers := mat.Parallelism()
	if limit := flops / parallelFlopCutoff; workers > limit {
		workers = limit
	}
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// matMulDispatch runs out = a × b, fanning out across row blocks when the
// product is large enough and the shared sweep budget grants workers. The
// kernel closure is built only inside the granted branch, so the serial hot
// path — small products, drained budget, parallelism 1 — allocates nothing.
func matMulDispatch(out, a, b *Matrix) {
	rows := a.rows
	if workers := planWorkers(rows, rows*a.cols*b.cols); workers > 1 {
		if granted := sweep.AcquireWorkers(workers - 1); granted > 0 {
			runRowBlocks(rows, granted+1, func(lo, hi int) { matMulRows(out, a, b, lo, hi) })
			sweep.ReleaseWorkers(granted)
			return
		}
	}
	matMulRows(out, a, b, 0, rows)
}

// matMulTDispatch is matMulDispatch for out = a × bᵀ.
func matMulTDispatch(out, a, b *Matrix) {
	rows := a.rows
	if workers := planWorkers(rows, rows*a.cols*b.rows); workers > 1 {
		if granted := sweep.AcquireWorkers(workers - 1); granted > 0 {
			runRowBlocks(rows, granted+1, func(lo, hi int) { matMulTRows(out, a, b, lo, hi) })
			sweep.ReleaseWorkers(granted)
			return
		}
	}
	matMulTRows(out, a, b, 0, rows)
}

// runRowBlocks fans body out over workers contiguous row blocks, block 0 on
// the calling goroutine. Every row is computed with the same arithmetic
// order regardless of blocking, so results are byte-identical at any worker
// count.
func runRowBlocks(rows, workers int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		lo := rows * w / workers
		hi := rows * (w + 1) / workers
		//apslint:allow budgetguard workers was sized by the caller's sweep grant (see planWorkers), so these launches are budget-correct
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	body(0, rows/workers)
	wg.Wait()
}
