package mat32

// 8-wide unrolled inner kernels for the frozen-inference products. Unlike
// the f64 training kernels in internal/mat these carry no zero-skip: frozen
// activations are dense, and straight-line unconditional loops are what the
// compiler auto-vectorizes. Determinism still holds at any row-block split —
// each output row accumulates in ascending-k order with sequential adds, so
// which goroutine computes a row never changes its bits.

// matMulRows computes rows [lo, hi) of out = a × b with an ikj loop order,
// unrolling k by 8: one pass streams eight b rows against one output row.
// Rows are zeroed here, so callers never pre-clear out. The slicing keeps
// every inner index bounded by len(orow), which lets the compiler elide the
// bounds checks in the 8-term update.
func matMulRows(out, a, b *Matrix, lo, hi int) {
	ac, bc := a.cols, b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*ac : (i+1)*ac]
		orow := out.data[i*bc : (i+1)*bc]
		for j := range orow {
			orow[j] = 0
		}
		k := 0
		for ; k+8 <= ac; k += 8 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			a4, a5, a6, a7 := arow[k+4], arow[k+5], arow[k+6], arow[k+7]
			b0 := b.data[(k+0)*bc : (k+1)*bc]
			b1 := b.data[(k+1)*bc : (k+2)*bc]
			b2 := b.data[(k+2)*bc : (k+3)*bc]
			b3 := b.data[(k+3)*bc : (k+4)*bc]
			b4 := b.data[(k+4)*bc : (k+5)*bc]
			b5 := b.data[(k+5)*bc : (k+6)*bc]
			b6 := b.data[(k+6)*bc : (k+7)*bc]
			b7 := b.data[(k+7)*bc : (k+8)*bc]
			for j := range orow {
				// Eight SEQUENTIAL adds into a local: each add rounds like
				// one iteration of the scalar k-loop, so the unrolled tile
				// is bit-identical to the remainder loop below.
				v := orow[j]
				v += a0 * b0[j]
				v += a1 * b1[j]
				v += a2 * b2[j]
				v += a3 * b3[j]
				v += a4 * b4[j]
				v += a5 * b5[j]
				v += a6 * b6[j]
				v += a7 * b7[j]
				orow[j] = v
			}
		}
		for ; k < ac; k++ {
			av := arow[k]
			brow := b.data[k*bc : (k+1)*bc]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// matMulTRows computes rows [lo, hi) of out = a × bᵀ, unrolling the output
// column (b row) axis by 8: one streaming pass over the a row feeds eight
// independent dot-product accumulators.
func matMulTRows(out, a, b *Matrix, lo, hi int) {
	ac, bc, bn := a.cols, b.cols, b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*ac : (i+1)*ac]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		j := 0
		for ; j+8 <= bn; j += 8 {
			b0 := b.data[(j+0)*bc : (j+1)*bc]
			b1 := b.data[(j+1)*bc : (j+2)*bc]
			b2 := b.data[(j+2)*bc : (j+3)*bc]
			b3 := b.data[(j+3)*bc : (j+4)*bc]
			b4 := b.data[(j+4)*bc : (j+5)*bc]
			b5 := b.data[(j+5)*bc : (j+6)*bc]
			b6 := b.data[(j+6)*bc : (j+7)*bc]
			b7 := b.data[(j+7)*bc : (j+8)*bc]
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
				s4 += av * b4[k]
				s5 += av * b5[k]
				s6 += av * b6[k]
				s7 += av * b7[k]
			}
			orow[j+0], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
		}
		for ; j < bn; j++ {
			brow := b.data[j*bc : (j+1)*bc]
			var sum float32
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
}
