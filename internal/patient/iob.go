package patient

// IOBCalculator estimates insulin on board (IOB) from the history of insulin
// delivered above or below the scheduled basal rate, the way OpenAPS-style
// controllers compute it. Each recorded delta decays linearly to zero over
// the duration of insulin action (DIA); temp-basal rates below basal produce
// negative contributions, so IOB (and its derivative) can be negative — the
// safety rules in Table I of the paper depend on that sign.
type IOBCalculator struct {
	// DIA is the duration of insulin action in minutes. Zero selects the
	// 240-minute default.
	DIA float64

	entries []iobEntry
}

type iobEntry struct {
	t     float64 // delivery time (minutes)
	units float64 // insulin above (+) or below (−) basal
}

const defaultDIA = 240

func (c *IOBCalculator) dia() float64 {
	if c.DIA <= 0 {
		return defaultDIA
	}
	return c.DIA
}

// Record registers units of insulin delivered at time t (minutes), expressed
// relative to the scheduled basal delivery for that interval.
func (c *IOBCalculator) Record(t, units float64) {
	if units == 0 {
		return
	}
	c.entries = append(c.entries, iobEntry{t: t, units: units})
}

// IOB returns the estimated insulin on board at time t.
func (c *IOBCalculator) IOB(t float64) float64 {
	dia := c.dia()
	var iob float64
	// Prune expired entries in place while summing.
	keep := c.entries[:0]
	for _, e := range c.entries {
		age := t - e.t
		if age >= dia {
			continue
		}
		keep = append(keep, e)
		if age < 0 {
			continue // future entry (callers replaying traces)
		}
		iob += e.units * (1 - age/dia)
	}
	c.entries = keep
	return iob
}

// Reset clears the delivery history.
func (c *IOBCalculator) Reset() { c.entries = c.entries[:0] }
