package patient

import (
	"math/rand"

	"repro/internal/ode"
)

// GlucosymParams are the coefficients of the extended Bergman minimal model.
// Rates are per minute; glucose in mg/dL; plasma insulin in µU/mL.
type GlucosymParams struct {
	ProfileID int

	P1 float64 // glucose effectiveness (1/min)
	P2 float64 // remote insulin decay (1/min)
	P3 float64 // insulin action gain (mL/µU/min²)
	N  float64 // plasma insulin clearance (1/min)
	Ki float64 // infusion gain: µU/mL per U of insulin
	Gb float64 // basal (target) glucose (mg/dL)
	Ib float64 // basal plasma insulin (µU/mL)

	KAbs  float64 // gut absorption rate (1/min)
	CarbF float64 // mg/dL glucose rise per gram of carbs absorbed
}

// nominalGlucosym is the reference adult T1D parameter set.
func nominalGlucosym() GlucosymParams {
	return GlucosymParams{
		P1:    0.0035,
		P2:    0.025,
		P3:    1.3e-5,
		N:     0.14,
		Ki:    83,
		Gb:    120,
		Ib:    10,
		KAbs:  0.022,
		CarbF: 3.0,
	}
}

// GlucosymProfileCount is the number of simulated diabetic patient profiles
// (the paper simulates 20 per simulator).
const GlucosymProfileCount = 20

// GlucosymProfile returns the parameter set for profile id ∈ [0, 20).
// Profiles are generated deterministically: a fixed-seed RNG perturbs the
// nominal insulin-sensitivity, clearance and absorption parameters by up to
// ±25% and spreads basal glucose over 105–150 mg/dL, mimicking the
// inter-patient variability of the Glucosym population.
func GlucosymProfile(id int) (GlucosymParams, error) {
	if err := validateProfile(id, GlucosymProfileCount); err != nil {
		return GlucosymParams{}, err
	}
	rng := rand.New(rand.NewSource(1000 + int64(id)))
	vary := func(v, frac float64) float64 { return v * (1 + frac*(2*rng.Float64()-1)) }
	p := nominalGlucosym()
	p.ProfileID = id
	p.P1 = vary(p.P1, 0.25)
	p.P2 = vary(p.P2, 0.25)
	p.P3 = vary(p.P3, 0.25)
	p.N = vary(p.N, 0.15)
	p.Gb = 105 + 45*rng.Float64()
	p.Ib = vary(p.Ib, 0.2)
	p.KAbs = vary(p.KAbs, 0.2)
	p.CarbF = vary(p.CarbF, 0.15)
	return p, nil
}

// Glucosym is the Bergman-style plant. State vector:
//
//	y[0] = G    plasma glucose (mg/dL)
//	y[1] = X    remote insulin action (1/min)
//	y[2] = Ip   plasma insulin (µU/mL)
//	y[3] = Qgut glucose in gut (g)
type Glucosym struct {
	params GlucosymParams
	integ  *ode.Integrator
	y      [4]float64
	t      float64

	// inputs latched for the ODE right-hand side during a Step call
	insulin float64 // U/h
	carbs   float64 // g/min
}

var _ Model = (*Glucosym)(nil)

// NewGlucosym constructs the plant at its basal steady state.
func NewGlucosym(params GlucosymParams, method ode.Method) *Glucosym {
	g := &Glucosym{params: params, integ: ode.New(method)}
	g.Reset()
	return g
}

// NewGlucosymProfile is shorthand for profile lookup + construction with RK4.
func NewGlucosymProfile(id int) (*Glucosym, error) {
	p, err := GlucosymProfile(id)
	if err != nil {
		return nil, err
	}
	return NewGlucosym(p, ode.RK4), nil
}

// Name implements Model.
func (g *Glucosym) Name() string { return "glucosym" }

// ProfileID implements Model.
func (g *Glucosym) ProfileID() int { return g.params.ProfileID }

// Params returns the plant coefficients.
func (g *Glucosym) Params() GlucosymParams { return g.params }

// BG implements Model.
func (g *Glucosym) BG() float64 { return g.y[0] }

// PlasmaInsulin returns Ip (µU/mL), used in tests.
func (g *Glucosym) PlasmaInsulin() float64 { return g.y[2] }

// BasalRate implements Model: the infusion that holds Ip at Ib.
// From dIp/dt = −n·Ip + ki·u/60 at steady state: u_b = 60·n·Ib/ki.
func (g *Glucosym) BasalRate() float64 {
	return 60 * g.params.N * g.params.Ib / g.params.Ki
}

// Reset implements Model.
func (g *Glucosym) Reset() {
	g.y = [4]float64{g.params.Gb, 0, g.params.Ib, 0}
	g.t = 0
	g.insulin = 0
	g.carbs = 0
}

// Step implements Model.
func (g *Glucosym) Step(insulinUPerH, carbsGPerMin, dt float64) {
	if insulinUPerH < 0 {
		insulinUPerH = 0
	}
	if carbsGPerMin < 0 {
		carbsGPerMin = 0
	}
	g.insulin = insulinUPerH
	g.carbs = carbsGPerMin
	y := g.y[:]
	g.integ.Integrate(g.derivs, g.t, g.t+dt, 1.0, y)
	g.t += dt
	if g.y[0] < 10 { // physiological floor; the hazard fires long before
		g.y[0] = 10
	}
}

func (g *Glucosym) derivs(_ float64, y, dydt []float64) {
	p := g.params
	G, X, Ip, Q := y[0], y[1], y[2], y[3]
	ra := p.KAbs * Q * p.CarbF // mg/dL/min from gut absorption
	dydt[0] = -p.P1*(G-p.Gb) - X*G + ra
	dydt[1] = -p.P2*X + p.P3*(Ip-p.Ib)
	dydt[2] = -p.N*Ip + p.Ki*g.insulin/60
	dydt[3] = -p.KAbs*Q + g.carbs
}
