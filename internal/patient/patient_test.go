package patient

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ode"
)

func TestGlucosymSteadyStateAtBasal(t *testing.T) {
	g, err := NewGlucosymProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	start := g.BG()
	basal := g.BasalRate()
	if basal <= 0 {
		t.Fatalf("basal rate = %v, want > 0", basal)
	}
	for i := 0; i < 288; i++ { // 24 h at 5-min steps
		g.Step(basal, 0, 5)
	}
	if math.Abs(g.BG()-start) > 2 {
		t.Fatalf("BG drifted from %v to %v under basal insulin", start, g.BG())
	}
}

func TestT1DSSteadyStateAtBasal(t *testing.T) {
	p, err := NewT1DSProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	start := p.BG()
	basal := p.BasalRate()
	if basal <= 0 {
		t.Fatalf("basal rate = %v, want > 0", basal)
	}
	for i := 0; i < 288; i++ {
		p.Step(basal, 0, 5)
	}
	if math.Abs(p.BG()-start) > 5 {
		t.Fatalf("BG drifted from %v to %v under basal insulin", start, p.BG())
	}
}

func TestGlucosymMealRaisesBG(t *testing.T) {
	g, err := NewGlucosymProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	basal := g.BasalRate()
	start := g.BG()
	// 50 g meal over 15 minutes, insulin held at basal.
	for i := 0; i < 36; i++ { // 3 h
		carbs := 0.0
		if i < 3 {
			carbs = 50.0 / 15.0
		}
		g.Step(basal, carbs, 5)
	}
	if g.BG() < start+40 {
		t.Fatalf("50 g meal raised BG only from %v to %v", start, g.BG())
	}
}

func TestT1DSMealRaisesBG(t *testing.T) {
	p, err := NewT1DSProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	basal := p.BasalRate()
	start := p.BG()
	peak := start
	for i := 0; i < 36; i++ {
		carbs := 0.0
		if i < 3 {
			carbs = 50.0 / 15.0
		}
		p.Step(basal, carbs, 5)
		if p.BG() > peak {
			peak = p.BG()
		}
	}
	if peak < start+30 {
		t.Fatalf("50 g meal raised BG only from %v to %v", start, peak)
	}
}

func TestGlucosymInsulinLowersBG(t *testing.T) {
	g, err := NewGlucosymProfile(2)
	if err != nil {
		t.Fatal(err)
	}
	basal := g.BasalRate()
	start := g.BG()
	for i := 0; i < 24; i++ { // 2 h of 3× basal
		g.Step(3*basal, 0, 5)
	}
	if g.BG() >= start-10 {
		t.Fatalf("3x basal insulin dropped BG only from %v to %v", start, g.BG())
	}
}

func TestT1DSInsulinLowersBG(t *testing.T) {
	p, err := NewT1DSProfile(2)
	if err != nil {
		t.Fatal(err)
	}
	basal := p.BasalRate()
	start := p.BG()
	for i := 0; i < 36; i++ { // 3 h of 3× basal (s.c. absorption is slow)
		p.Step(3*basal, 0, 5)
	}
	if p.BG() >= start-10 {
		t.Fatalf("3x basal insulin dropped BG only from %v to %v", start, p.BG())
	}
}

func TestInsulinSuspensionRaisesBGT1DS(t *testing.T) {
	p, err := NewT1DSProfile(3)
	if err != nil {
		t.Fatal(err)
	}
	start := p.BG()
	for i := 0; i < 48; i++ { // 4 h with pump suspended
		p.Step(0, 0, 5)
	}
	if p.BG() <= start {
		t.Fatalf("suspension did not raise BG: %v → %v", start, p.BG())
	}
}

func TestBGNeverBelowFloor(t *testing.T) {
	// Massive overdose must saturate at the physiological floor, not go
	// negative — the hazard label fires long before.
	g, err := NewGlucosymProfile(4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewT1DSProfile(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 288; i++ {
		g.Step(50, 0, 5)
		p.Step(50, 0, 5)
		if g.BG() < 10 || p.BG() < 10 {
			t.Fatalf("BG below floor: glucosym %v t1ds %v", g.BG(), p.BG())
		}
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	for _, m := range []Model{
		mustGlucosym(t, 5), mustT1DS(t, 5),
	} {
		start := m.BG()
		m.Step(20, 3, 5)
		m.Step(20, 3, 5)
		if m.BG() == start {
			t.Fatalf("%s: state did not move", m.Name())
		}
		m.Reset()
		if m.BG() != start {
			t.Fatalf("%s: Reset gave BG %v, want %v", m.Name(), m.BG(), start)
		}
	}
}

func mustGlucosym(t *testing.T, id int) *Glucosym {
	t.Helper()
	g, err := NewGlucosymProfile(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustT1DS(t *testing.T, id int) *T1DS {
	t.Helper()
	p, err := NewT1DSProfile(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilesAreDeterministicAndDistinct(t *testing.T) {
	a, err := GlucosymProfile(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GlucosymProfile(7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("GlucosymProfile must be deterministic")
	}
	c, err := GlucosymProfile(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.P3 == c.P3 && a.Gb == c.Gb {
		t.Fatal("distinct profiles should differ")
	}

	ta, err := T1DSProfile(7)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := T1DSProfile(7)
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Fatal("T1DSProfile must be deterministic")
	}
}

func TestProfileRangeValidation(t *testing.T) {
	if _, err := GlucosymProfile(-1); err == nil {
		t.Fatal("want error for negative profile")
	}
	if _, err := GlucosymProfile(GlucosymProfileCount); err == nil {
		t.Fatal("want error for out-of-range profile")
	}
	if _, err := T1DSProfile(99); err == nil {
		t.Fatal("want error for out-of-range profile")
	}
}

func TestAllProfilesProduceViablePatients(t *testing.T) {
	for id := 0; id < GlucosymProfileCount; id++ {
		g := mustGlucosym(t, id)
		if g.BG() < 90 || g.BG() > 170 {
			t.Errorf("glucosym profile %d starts at BG %v", id, g.BG())
		}
		if b := g.BasalRate(); b <= 0 || b > 5 {
			t.Errorf("glucosym profile %d basal %v U/h", id, b)
		}
	}
	for id := 0; id < T1DSProfileCount; id++ {
		p := mustT1DS(t, id)
		if p.BG() < 90 || p.BG() > 170 {
			t.Errorf("t1ds profile %d starts at BG %v", id, p.BG())
		}
		if b := p.BasalRate(); b <= 0 || b > 5 {
			t.Errorf("t1ds profile %d basal %v U/h", id, b)
		}
	}
}

func TestTwoSimulatorsHaveDifferentDynamics(t *testing.T) {
	// The paper's Fig 4 exploits the different BG distributions of the two
	// simulators. Check the step responses differ materially.
	g, p := mustGlucosym(t, 0), mustT1DS(t, 0)
	gb, pb := g.BasalRate(), p.BasalRate()
	var gPeak, pPeak float64
	for i := 0; i < 24; i++ {
		carbs := 0.0
		if i < 3 {
			carbs = 60.0 / 15.0
		}
		g.Step(gb, carbs, 5)
		p.Step(pb, carbs, 5)
		gPeak = math.Max(gPeak, g.BG())
		pPeak = math.Max(pPeak, p.BG())
	}
	if math.Abs(gPeak-pPeak) < 1 {
		t.Fatalf("simulators look identical: peaks %v vs %v", gPeak, pPeak)
	}
}

func TestMealScheduleRate(t *testing.T) {
	s := MealSchedule{
		{StartMin: 60, Grams: 45, DurationMin: 15},
		{StartMin: 300, Grams: 30, DurationMin: 10},
	}
	if got := s.Rate(0); got != 0 {
		t.Fatalf("Rate(0) = %v", got)
	}
	if got := s.Rate(65); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Rate(65) = %v, want 3", got)
	}
	if got := s.Rate(75); got != 0 {
		t.Fatalf("Rate(75) = %v, want 0 (meal over)", got)
	}
	if got := s.Rate(305); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Rate(305) = %v, want 3", got)
	}
	if got := s.TotalCarbs(); got != 75 {
		t.Fatalf("TotalCarbs = %v, want 75", got)
	}
	// Zero-duration meals absorb over 1 minute rather than dividing by zero.
	z := MealSchedule{{StartMin: 0, Grams: 10}}
	if got := z.Rate(0.5); math.Abs(got-10) > 1e-12 {
		t.Fatalf("zero-duration Rate = %v, want 10", got)
	}
}

// Total meal rate integrated over time equals total grams.
func TestMealScheduleConservesCarbs(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		s := MealSchedule{
			{StartMin: float64(seed % 100), Grams: 20 + float64(seed%40), DurationMin: 10 + float64(seed%20)},
		}
		var integral float64
		dt := 0.5
		for t := 0.0; t < 300; t += dt {
			integral += s.Rate(t) * dt
		}
		return math.Abs(integral-s.TotalCarbs()) < 1e-6*s.TotalCarbs()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIOBDecaysToZero(t *testing.T) {
	c := IOBCalculator{DIA: 120}
	c.Record(0, 2)
	if got := c.IOB(0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("IOB(0) = %v, want 2", got)
	}
	if got := c.IOB(60); math.Abs(got-1) > 1e-12 {
		t.Fatalf("IOB(60) = %v, want 1 (half decayed)", got)
	}
	if got := c.IOB(120); got != 0 {
		t.Fatalf("IOB(120) = %v, want 0", got)
	}
	if got := c.IOB(500); got != 0 {
		t.Fatalf("IOB(500) = %v, want 0", got)
	}
}

func TestIOBNegativeDeliveries(t *testing.T) {
	c := IOBCalculator{DIA: 100}
	c.Record(0, -1) // suspension below basal
	if got := c.IOB(50); got >= 0 {
		t.Fatalf("IOB = %v, want negative", got)
	}
}

func TestIOBSuperposition(t *testing.T) {
	c := IOBCalculator{DIA: 100}
	c.Record(0, 1)
	c.Record(50, 1)
	want := 1*(1-60.0/100) + 1*(1-10.0/100)
	if got := c.IOB(60); math.Abs(got-want) > 1e-12 {
		t.Fatalf("IOB(60) = %v, want %v", got, want)
	}
}

func TestIOBPrunesExpiredEntries(t *testing.T) {
	c := IOBCalculator{DIA: 10}
	for i := 0; i < 1000; i++ {
		c.Record(float64(i), 0.1)
		c.IOB(float64(i))
	}
	if len(c.entries) > 11 {
		t.Fatalf("expired entries not pruned: %d retained", len(c.entries))
	}
	c.Reset()
	if got := c.IOB(1000); got != 0 {
		t.Fatalf("IOB after Reset = %v", got)
	}
}

func TestIOBZeroUnitIgnored(t *testing.T) {
	c := IOBCalculator{}
	c.Record(0, 0)
	if len(c.entries) != 0 {
		t.Fatal("zero-unit record should be dropped")
	}
	if c.dia() != defaultDIA {
		t.Fatalf("default DIA = %v", c.dia())
	}
}

func TestEulerAndRK4Agree(t *testing.T) {
	// The plant must be insensitive to the integration scheme at the 1-min
	// internal step (sanity check on stiffness).
	p0, err := GlucosymProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	a := NewGlucosym(p0, ode.RK4)
	b := NewGlucosym(p0, ode.Euler)
	basal := a.BasalRate()
	for i := 0; i < 60; i++ {
		carbs := 0.0
		if i == 10 {
			carbs = 8
		}
		a.Step(2*basal, carbs, 5)
		b.Step(2*basal, carbs, 5)
	}
	if math.Abs(a.BG()-b.BG()) > 2 {
		t.Fatalf("integrators disagree: RK4 %v vs Euler %v", a.BG(), b.BG())
	}
}
