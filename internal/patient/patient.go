// Package patient implements the virtual diabetic patients behind the two
// closed-loop APS case studies of the paper:
//
//   - Glucosym: an extended Bergman minimal model (the Glucosym simulator the
//     paper pairs with the OpenAPS controller is itself a compartmental
//     insulin–glucose ODE of this family);
//   - T1DS: a Hovorka-style two-compartment model standing in for the
//     UVA-Padova T1DS2013 simulator, with deliberately different structure
//     and blood-glucose distribution (the property Fig. 4 of the paper
//     relies on).
//
// Both expose the same Model interface: advance by dt minutes under an
// insulin infusion (U/h) and a carbohydrate ingestion rate (g/min), and
// report blood glucose in mg/dL.
package patient

import "fmt"

// Model is a virtual patient plant.
type Model interface {
	// Name identifies the simulator family ("glucosym" or "t1ds").
	Name() string
	// ProfileID identifies which of the 20 patient profiles this is.
	ProfileID() int
	// BG returns the current blood glucose in mg/dL.
	BG() float64
	// BasalRate returns the insulin infusion (U/h) that holds the patient at
	// its target steady state.
	BasalRate() float64
	// Step advances the plant by dt minutes with the given insulin infusion
	// (U/h, clamped at 0) and carbohydrate ingestion rate (g/min).
	Step(insulinUPerH, carbsGPerMin, dt float64)
	// Reset restores the initial steady state.
	Reset()
}

// Hazard thresholds shared across the repo (mg/dL). The paper's rule 10 uses
// BG < 70 for hypoglycemia; 180 is the standard hyperglycemia threshold.
const (
	HypoThreshold  = 70
	HyperThreshold = 180
)

// Meal is a carbohydrate intake event, absorbed at a constant rate over its
// duration.
type Meal struct {
	StartMin    float64 // minutes from episode start
	Grams       float64
	DurationMin float64
	// Unannounced marks a meal the patient eats without telling the
	// controller — announcement-driven controllers never see its carbs
	// (the missed-bolus scenario). Absorption is unaffected.
	Unannounced bool
}

// MealSchedule is a set of meals within an episode.
type MealSchedule []Meal

// Rate returns the carbohydrate ingestion rate (g/min) at time t (minutes).
func (s MealSchedule) Rate(t float64) float64 {
	var r float64
	for _, m := range s {
		d := m.DurationMin
		if d <= 0 {
			d = 1
		}
		if t >= m.StartMin && t < m.StartMin+d {
			r += m.Grams / d
		}
	}
	return r
}

// TotalCarbs returns the total grams in the schedule.
func (s MealSchedule) TotalCarbs() float64 {
	var g float64
	for _, m := range s {
		g += m.Grams
	}
	return g
}

func validateProfile(id, n int) error {
	if id < 0 || id >= n {
		return fmt.Errorf("patient: profile id %d out of range [0,%d)", id, n)
	}
	return nil
}
