package patient

import (
	"math/rand"

	"repro/internal/ode"
)

// T1DSParams are the coefficients of the Hovorka-style model standing in for
// the UVA-Padova T1DS2013 simulator. Internal units: glucose in mmol
// (masses) and mmol/L (concentration), insulin in U and mU/L, time in
// minutes. BG is reported in mg/dL (1 mmol/L = 18 mg/dL).
type T1DSParams struct {
	ProfileID int

	WeightKg float64
	K12      float64 // glucose transfer rate (1/min)
	Ka1      float64 // insulin action deactivation rates (1/min)
	Ka2      float64
	Ka3      float64
	SIT      float64 // insulin sensitivities (per mU/L)
	SID      float64
	SIE      float64
	Ke       float64 // plasma insulin elimination (1/min)
	VIperKg  float64 // insulin distribution volume (L/kg)
	VGperKg  float64 // glucose distribution volume (L/kg)
	EGP0     float64 // endogenous glucose production at zero insulin (mmol/kg/min)
	F01      float64 // non-insulin-dependent glucose flux (mmol/kg/min)
	TMaxI    float64 // subcutaneous insulin absorption time constant (min)
	TMaxG    float64 // gut absorption time constant (min)
	AG       float64 // carbohydrate bioavailability (0–1)
	GTarget  float64 // steady-state glucose (mmol/L)
}

// VI returns the insulin distribution volume in litres.
func (p T1DSParams) VI() float64 { return p.VIperKg * p.WeightKg }

// VG returns the glucose distribution volume in litres.
func (p T1DSParams) VG() float64 { return p.VGperKg * p.WeightKg }

func nominalT1DS() T1DSParams {
	return T1DSParams{
		WeightKg: 70,
		K12:      0.066,
		Ka1:      0.006,
		Ka2:      0.06,
		Ka3:      0.03,
		SIT:      51.2e-4,
		SID:      8.2e-4,
		SIE:      520e-4,
		Ke:       0.138,
		VIperKg:  0.12,
		VGperKg:  0.16,
		EGP0:     0.0161,
		F01:      0.0097,
		TMaxI:    55,
		TMaxG:    40,
		AG:       0.8,
		GTarget:  7.0, // 126 mg/dL
	}
}

// T1DSProfileCount is the number of simulated patient profiles.
const T1DSProfileCount = 20

// T1DSProfile returns the deterministic parameter set for profile
// id ∈ [0, 20). A fixed-seed RNG perturbs body weight (55–95 kg), insulin
// sensitivities (±30%), absorption time constants (±20%) and the target
// glucose (6.1–8.3 mmol/L ≈ 110–150 mg/dL).
func T1DSProfile(id int) (T1DSParams, error) {
	if err := validateProfile(id, T1DSProfileCount); err != nil {
		return T1DSParams{}, err
	}
	rng := rand.New(rand.NewSource(2000 + int64(id)))
	vary := func(v, frac float64) float64 { return v * (1 + frac*(2*rng.Float64()-1)) }
	p := nominalT1DS()
	p.ProfileID = id
	p.WeightKg = 55 + 40*rng.Float64()
	p.SIT = vary(p.SIT, 0.3)
	p.SID = vary(p.SID, 0.3)
	p.SIE = vary(p.SIE, 0.3)
	p.Ke = vary(p.Ke, 0.15)
	p.TMaxI = vary(p.TMaxI, 0.2)
	p.TMaxG = vary(p.TMaxG, 0.2)
	p.EGP0 = vary(p.EGP0, 0.15)
	p.F01 = vary(p.F01, 0.15)
	p.GTarget = 6.1 + 2.2*rng.Float64()
	return p, nil
}

// T1DS is the Hovorka-style plant. State vector:
//
//	y[0] = Q1 glucose mass, accessible compartment (mmol)
//	y[1] = Q2 glucose mass, non-accessible compartment (mmol)
//	y[2] = S1 subcutaneous insulin depot 1 (U)
//	y[3] = S2 subcutaneous insulin depot 2 (U)
//	y[4] = I  plasma insulin (mU/L)
//	y[5] = x1 insulin action on transport (1/min)
//	y[6] = x2 insulin action on disposal (1/min)
//	y[7] = x3 insulin action on EGP (dimensionless)
//	y[8] = D1 gut compartment 1 (mmol)
//	y[9] = D2 gut compartment 2 (mmol)
type T1DS struct {
	params T1DSParams
	integ  *ode.Integrator
	y      [10]float64
	t      float64
	basal  float64 // U/h holding the steady state

	insulin float64 // U/h
	carbs   float64 // g/min
}

var _ Model = (*T1DS)(nil)

// mmol of glucose per gram of carbohydrate.
const mmolPerGramCarb = 1000.0 / 180.0

// NewT1DS constructs the plant at the steady state for params.GTarget.
func NewT1DS(params T1DSParams, method ode.Method) *T1DS {
	t := &T1DS{params: params, integ: ode.New(method)}
	t.basal = t.solveBasal()
	t.Reset()
	return t
}

// NewT1DSProfile is shorthand for profile lookup + construction with RK4.
func NewT1DSProfile(id int) (*T1DS, error) {
	p, err := T1DSProfile(id)
	if err != nil {
		return nil, err
	}
	return NewT1DS(p, ode.RK4), nil
}

// Name implements Model.
func (t *T1DS) Name() string { return "t1ds" }

// ProfileID implements Model.
func (t *T1DS) ProfileID() int { return t.params.ProfileID }

// Params returns the plant coefficients.
func (t *T1DS) Params() T1DSParams { return t.params }

// BG implements Model.
func (t *T1DS) BG() float64 { return t.y[0] / t.params.VG() * 18 }

// PlasmaInsulin returns I (mU/L), used in tests.
func (t *T1DS) PlasmaInsulin() float64 { return t.y[4] }

// BasalRate implements Model.
func (t *T1DS) BasalRate() float64 { return t.basal }

// steadyInsulin computes the plasma-insulin level I (mU/L) that holds glucose
// at G0 (mmol/L), by bisection on the Q1 balance.
func (t *T1DS) steadyInsulin(g0 float64) float64 {
	p := t.params
	vg := p.VG()
	q1 := g0 * vg
	f01c := p.F01 * p.WeightKg
	if g0 < 4.5 {
		f01c *= g0 / 4.5
	}
	fr := 0.0
	if g0 >= 9 {
		fr = 0.003 * (g0 - 9) * vg
	}
	balance := func(i float64) float64 {
		x1 := p.SIT * i
		x2 := p.SID * i
		x3 := p.SIE * i
		q2 := x1 * q1 / (p.K12 + x2)
		egp := p.EGP0 * p.WeightKg * (1 - x3)
		if egp < 0 {
			egp = 0
		}
		return -f01c - x1*q1 + p.K12*q2 - fr + egp
	}
	lo, hi := 0.0, 1.0/p.SIE // x3 ≤ 1 keeps EGP non-negative
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if balance(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// solveBasal converts the steady plasma insulin into an infusion rate (U/h):
// I_ss = 1000·(u/60)/(V_I·k_e)  ⇒  u = I·V_I·k_e·60/1000.
func (t *T1DS) solveBasal() float64 {
	i := t.steadyInsulin(t.params.GTarget)
	return i * t.params.VI() * t.params.Ke * 60 / 1000
}

// Reset implements Model.
func (t *T1DS) Reset() {
	p := t.params
	iSS := t.steadyInsulin(p.GTarget)
	uPerMin := t.basal / 60
	q1 := p.GTarget * p.VG()
	x1, x2, x3 := p.SIT*iSS, p.SID*iSS, p.SIE*iSS
	q2 := 0.0
	if p.K12+x2 > 0 {
		q2 = x1 * q1 / (p.K12 + x2)
	}
	t.y = [10]float64{
		q1, q2,
		uPerMin * p.TMaxI, uPerMin * p.TMaxI,
		iSS,
		x1, x2, x3,
		0, 0,
	}
	t.t = 0
	t.insulin = 0
	t.carbs = 0
}

// Step implements Model.
func (t *T1DS) Step(insulinUPerH, carbsGPerMin, dt float64) {
	if insulinUPerH < 0 {
		insulinUPerH = 0
	}
	if carbsGPerMin < 0 {
		carbsGPerMin = 0
	}
	t.insulin = insulinUPerH
	t.carbs = carbsGPerMin
	t.integ.Integrate(t.derivs, t.t, t.t+dt, 1.0, t.y[:])
	t.t += dt
	minQ1 := 10.0 / 18.0 * t.params.VG() // 10 mg/dL floor
	if t.y[0] < minQ1 {
		t.y[0] = minQ1
	}
	for i := range t.y {
		if t.y[i] < 0 && i != 0 {
			t.y[i] = 0
		}
	}
}

func (t *T1DS) derivs(_ float64, y, dydt []float64) {
	p := t.params
	vg, vi := p.VG(), p.VI()
	q1, q2, s1, s2, ins := y[0], y[1], y[2], y[3], y[4]
	x1, x2, x3 := y[5], y[6], y[7]
	d1, d2 := y[8], y[9]

	g := q1 / vg
	f01c := p.F01 * p.WeightKg
	if g < 4.5 {
		f01c *= g / 4.5
	}
	fr := 0.0
	if g >= 9 {
		fr = 0.003 * (g - 9) * vg
	}
	ug := d2 / p.TMaxG
	egp := p.EGP0 * p.WeightKg * (1 - x3)
	if egp < 0 {
		egp = 0
	}

	dydt[0] = -f01c - x1*q1 + p.K12*q2 - fr + ug + egp
	dydt[1] = x1*q1 - (p.K12+x2)*q2
	dydt[2] = t.insulin/60 - s1/p.TMaxI
	dydt[3] = (s1 - s2) / p.TMaxI
	dydt[4] = 1000*s2/(p.TMaxI*vi) - p.Ke*ins
	dydt[5] = p.SIT*p.Ka1*ins - p.Ka1*x1
	dydt[6] = p.SID*p.Ka2*ins - p.Ka2*x2
	dydt[7] = p.SIE*p.Ka3*ins - p.Ka3*x3
	dydt[8] = p.AG*t.carbs*mmolPerGramCarb - d1/p.TMaxG
	dydt[9] = (d1 - d2) / p.TMaxG
}
